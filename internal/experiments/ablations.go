package experiments

import (
	"fmt"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
)

// The ablations quantify the design choices DESIGN.md §6 calls out. They
// have no direct figure in the paper, but §6 motivates each one: the
// coarse split-ratio grid, asynchronous GPU command issue, and zero-copy
// shared memory.

// AblationSplitGranularity compares the paper's {0.25, 0.5, 0.75} grid
// against a coarse {0.5} grid and a fine 0.05-step grid on the high-end
// SoC.
func (e *Env) AblationSplitGranularity() (*Table, error) {
	s := e.SoCs[0]
	pred := e.Pred(s)
	grids := []struct {
		name string
		grid []float64
	}{
		{"{0.5}", []float64{0.5}},
		{"{0.25,0.5,0.75} (paper)", partition.DefaultGrid},
		{"fine (0.05 steps)", fineGrid()},
	}
	t := &Table{
		ID:     "Ablation A1",
		Title:  "Split-ratio grid granularity (uLayer latency, high-end SoC)",
		Header: []string{"NN", grids[0].name, grids[1].name, grids[2].name},
	}
	for _, m := range e.Specs() {
		row := []string{m.Name}
		for _, g := range grids {
			o := partition.MuLayer(s, pred)
			o.Grid = g.grid
			r, err := e.RunMechanism(m, s, o)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(r.Latency)+"ms")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "the paper's 3-point grid captures nearly all of the fine grid's benefit")
	return t, nil
}

func fineGrid() []float64 {
	var g []float64
	for p := 0.05; p < 0.999; p += 0.05 {
		g = append(g, float64(int(p*100+0.5))/100)
	}
	return g
}

// AblationIssueAndMemory compares μLayer with and without asynchronous GPU
// command issue and zero-copy shared memory (§6's two implementation
// optimizations).
func (e *Env) AblationIssueAndMemory() (*Table, error) {
	t := &Table{
		ID:     "Ablation A2",
		Title:  "Implementation optimizations: async GPU issue and zero-copy memory (uLayer latency)",
		Header: []string{"NN", "SoC", "full(ms)", "blocking issue", "copy-based sync", "both off"},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		for _, m := range e.Specs() {
			o := partition.MuLayer(s, pred)
			plan, err := partition.Build(m.Graph, o)
			if err != nil {
				return nil, err
			}
			run := func(async, zero bool) float64 {
				res, err := exec.Run(m.Graph, plan, nil, exec.Config{
					SoC: s, Pipe: o.Pipe, AsyncIssue: async, ZeroCopy: zero,
				})
				if err != nil {
					panic(err)
				}
				return float64(res.Report.Latency)
			}
			full := run(true, true)
			t.Rows = append(t.Rows, []string{
				m.Name, s.Name,
				fmt.Sprintf("%.2f", full/1e6),
				fmt.Sprintf("%.2fx", run(false, true)/full),
				fmt.Sprintf("%.2fx", run(true, false)/full),
				fmt.Sprintf("%.2fx", run(false, false)/full),
			})
		}
	}
	t.Notes = append(t.Notes, "slowdowns relative to the full implementation; both optimizations matter most on branchy, many-kernel NNs")
	return t, nil
}

// AblationBranchDistribution isolates branch distribution on the two
// branch-applicable NNs across both SoCs (complementing Figure 17).
func (e *Env) AblationBranchDistribution() (*Table, error) {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "Branch distribution on branchy NNs (uLayer latency with/without)",
		Header: []string{"NN", "SoC", "without(ms)", "with(ms)", "improvement"},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		for _, build := range []func(models.Config) (*models.Model, error){models.GoogLeNet, models.SqueezeNetV11} {
			m, err := build(models.Config{})
			if err != nil {
				return nil, err
			}
			without, err := e.RunMechanism(m, s, partition.ChannelDistProcQuant(s, pred))
			if err != nil {
				return nil, err
			}
			with, err := e.RunMechanism(m, s, partition.MuLayer(s, pred))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				m.Name, s.Name, ms(without.Latency), ms(with.Latency),
				pct(1 - float64(with.Latency)/float64(without.Latency)),
			})
		}
	}
	return t, nil
}
