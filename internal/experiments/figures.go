package experiments

import (
	"fmt"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/graph"
	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// Figure5 reproduces the per-layer CPU/GPU latency profile of VGG-16 on
// both SoCs (§3.1): the motivation that per-layer throughput is
// well-balanced, with the GPU averaging only ~1.40× on the high-end part
// and the CPU winning on the mid-range part.
func (e *Env) Figure5() (*Table, error) {
	m, err := models.VGG16(models.Config{})
	if err != nil {
		return nil, err
	}
	shapes, err := m.Graph.InferShapes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 5",
		Title:  "Per-layer execution latency of VGG-16 (F32), CPU vs GPU",
		Header: []string{"layer", "7420 CPU(ms)", "7420 GPU(ms)", "7420 CPU/GPU", "7880 CPU(ms)", "7880 GPU(ms)", "7880 CPU/GPU"},
	}
	hi, mid := e.SoCs[0], e.SoCs[1]
	var hiRatios, midRatios []float64
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		kind := n.Layer.Kind()
		if kind != nn.OpConv && kind != nn.OpFC {
			continue
		}
		c := n.Layer.Cost(m.Graph.InputShapes(n.ID, shapes))
		row := []string{n.Layer.Name()}
		for _, s := range []*soc.SoC{hi, mid} {
			cw := layerWork(kind, c, tensor.F32, tensor.F32.Size())
			cpu := s.CPU.KernelTime(cw)
			gpu := s.GPU.KernelTime(cw)
			row = append(row, ms(cpu), ms(gpu), ratio(cpu, gpu))
			if s == hi {
				hiRatios = append(hiRatios, float64(cpu)/float64(gpu))
			} else {
				midRatios = append(midRatios, float64(cpu)/float64(gpu))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean GPU speedup over CPU: high-end %.2fx (paper: 1.40x), mid-range %.2fx (paper: CPU 26.1%% faster, i.e. ~0.74x)",
			geomean(hiRatios), geomean(midRatios)))
	return t, nil
}

func layerWork(kind nn.OpKind, c nn.Cost, dt tensor.DataType, wBytes int64) device.Work {
	ssz := dt.Size()
	return device.Work{
		Kind: kind, MACs: c.MACs,
		MovedBytes:      c.InElems*ssz + c.WElems*wBytes + c.OutElems*ssz,
		WorkingSetBytes: c.InElems*ssz + c.WElems*wBytes,
		Compute:         dt,
	}
}

// Figure6 reproduces the whole-network CPU vs GPU latency comparison
// across the five NNs on both SoCs (§3.1).
func (e *Env) Figure6() (*Table, error) {
	t := &Table{
		ID:     "Figure 6",
		Title:  "NN execution latency (F32): CPU-only vs GPU-only",
		Header: []string{"NN", "SoC", "CPU(ms)", "GPU(ms)", "CPU/GPU"},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		for _, m := range e.Specs() {
			cpu, err := e.RunMechanism(m, s, partition.SingleProcessor(s, pred, partition.ProcCPU, tensor.F32))
			if err != nil {
				return nil, err
			}
			gpu, err := e.RunMechanism(m, s, partition.SingleProcessor(s, pred, partition.ProcGPU, tensor.F32))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{m.Name, s.Name, ms(cpu.Latency), ms(gpu.Latency), ratio(cpu.Latency, gpu.Latency)})
		}
	}
	t.Notes = append(t.Notes, "per-layer balance holds across NNs: neither processor dominates")
	return t, nil
}

// Figure8 reproduces the quantization impact study (§4.1): latency of
// CPU/GPU × F32/F16/QUInt8, normalized to CPU F32 per NN.
func (e *Env) Figure8() (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Impact of quantization on latency (normalized to CPU+F32; lower is better)",
		Header: []string{"NN", "SoC", "CPU F32", "CPU F16", "CPU U8", "GPU F32", "GPU F16", "GPU U8"},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		for _, m := range e.Specs() {
			lat := func(p partition.Proc, dt tensor.DataType) time.Duration {
				r, err := e.RunMechanism(m, s, partition.SingleProcessor(s, pred, p, dt))
				if err != nil {
					panic(err)
				}
				return r.Latency
			}
			base := lat(partition.ProcCPU, tensor.F32)
			row := []string{m.Name, s.Name}
			for _, p := range []partition.Proc{partition.ProcCPU, partition.ProcGPU} {
				for _, dt := range []tensor.DataType{tensor.F32, tensor.F16, tensor.QUInt8} {
					row = append(row, ratio(lat(p, dt), base))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"CPU: QUInt8 helps, F16 does nothing (emulated); GPU: F16 helps, QUInt8 hurts — the processor-friendly pairing (§4.2)")
	return t, nil
}

// Figure12 reproduces the branch-distribution motivation (§5): GoogLeNet's
// first Inception module on the high-end SoC under CPU-only (QUInt8),
// cooperative channel-wise execution, and the optimal branch mapping.
func (e *Env) Figure12() (*Table, error) {
	m, err := models.Inception3a(models.Config{})
	if err != nil {
		return nil, err
	}
	s := e.SoCs[0]
	pred := e.Pred(s)
	cpuOnly, err := e.RunMechanism(m, s, partition.SingleProcessor(s, pred, partition.ProcCPU, tensor.QUInt8))
	if err != nil {
		return nil, err
	}
	// "Cooperative" is §5's always-split behavior: every layer executed on
	// both processors with the interior ratio grid, paying the per-layer
	// synchronization the paper calls out.
	coopOpts := partition.ChannelDistProcQuant(s, pred)
	coopOpts.SingleFallback = false
	coop, err := e.RunMechanism(m, s, coopOpts)
	if err != nil {
		return nil, err
	}
	// "Cooperative (Optimal)" assigns whole branches to processors — the
	// scenario the paper constructs by hand (branches 0,1 → CPU, 2,3 → GPU
	// on their testbed; here the enumerated argmin assignment).
	optOpts := partition.MuLayer(s, pred)
	optOpts.SingleFallback = false
	optOpts.ForceBranch = true
	opt, err := e.RunMechanism(m, s, optOpts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 12",
		Title:  "Potential latency benefits of branch distribution (inception_3a, high-end SoC)",
		Header: []string{"mechanism", "latency(ms)", "vs CPU-only"},
		Rows: [][]string{
			{"CPU-Only (QUInt8)", ms(cpuOnly.Latency), "-"},
			{"Cooperative (Ch.Dist+Proc.Quant)", ms(coop.Latency), pct(1 - float64(coop.Latency)/float64(cpuOnly.Latency))},
			{"Cooperative (Optimal, branch dist.)", ms(opt.Latency), pct(1 - float64(opt.Latency)/float64(cpuOnly.Latency))},
		},
		Notes: []string{"paper: cooperative +52.1%, optimal +63.4% over CPU-only (high-end SoC)"},
	}
	return t, nil
}

// Figure16 reproduces the headline latency evaluation (§7.2): the
// single-processor mechanisms, the layer-to-processor mechanism, and
// μLayer, normalized to layer-to-processor.
func (e *Env) Figure16() (*Table, error) {
	t := &Table{
		ID:     "Figure 16",
		Title:  "NN execution latency normalized to layer-to-processor (lower is better)",
		Header: []string{"NN", "SoC", "CPU F32", "CPU F16", "CPU U8", "GPU F32", "GPU F16", "GPU U8", "L2P(ms)", "uLayer", "uLayer impr."},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		var imprs []float64
		for _, m := range e.Specs() {
			lat := func(o partition.Options) time.Duration {
				r, err := e.RunMechanism(m, s, o)
				if err != nil {
					panic(err)
				}
				return r.Latency
			}
			l2p := lat(partition.LayerToProcessor(s, pred))
			mu := lat(partition.MuLayer(s, pred))
			row := []string{m.Name, s.Name}
			for _, p := range []partition.Proc{partition.ProcCPU, partition.ProcGPU} {
				for _, dt := range []tensor.DataType{tensor.F32, tensor.F16, tensor.QUInt8} {
					row = append(row, ratio(lat(partition.SingleProcessor(s, pred, p, dt)), l2p))
				}
			}
			impr := 1 - float64(mu)/float64(l2p)
			imprs = append(imprs, float64(l2p)/float64(mu))
			row = append(row, ms(l2p), ratio(mu, l2p), pct(impr))
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: geomean uLayer speed improvement %.1f%% (paper: 30.5%% high-end, 35.3%% mid-range; max 59.9%%/69.6%%)",
			s.Name, (1-1/geomean(imprs))*100))
	}
	return t, nil
}

// Figure17 reproduces the optimization-contribution ablation (§7.2):
// layer-to-processor, then channel-wise distribution, then
// processor-friendly quantization, then branch distribution, normalized to
// the complete μLayer.
func (e *Env) Figure17() (*Table, error) {
	t := &Table{
		ID:     "Figure 17",
		Title:  "Contribution of uLayer's optimizations (normalized to complete uLayer; lower is better)",
		Header: []string{"NN", "SoC", "L2P", "+Ch.Dist", "+Proc.Quant", "+Br.Dist(=uLayer)", "uLayer(ms)"},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		for _, m := range e.Specs() {
			run := func(o partition.Options) time.Duration {
				r, err := e.RunMechanism(m, s, o)
				if err != nil {
					panic(err)
				}
				return r.Latency
			}
			l2p := run(partition.LayerToProcessor(s, pred))
			ch := run(partition.ChannelDistOnly(s, pred))
			pq := run(partition.ChannelDistProcQuant(s, pred))
			mu := run(partition.MuLayer(s, pred))
			t.Rows = append(t.Rows, []string{
				m.Name, s.Name,
				ratio(l2p, mu), ratio(ch, mu), ratio(pq, mu), ratio(mu, mu), ms(mu),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Ch.Dist splits layers with both processors on QUInt8; Proc.Quant moves the GPU to F16; Br.Dist parallelizes divergent branches (GoogLeNet, SqueezeNet)")
	return t, nil
}

// Figure18 reproduces the energy evaluation (§7.3): total SoC energy per
// inference for the same mechanism suite, normalized to
// layer-to-processor.
func (e *Env) Figure18() (*Table, error) {
	t := &Table{
		ID:     "Figure 18",
		Title:  "Energy consumption normalized to layer-to-processor (lower is better)",
		Header: []string{"NN", "SoC", "CPU F32", "CPU F16", "CPU U8", "GPU F32", "GPU F16", "GPU U8", "L2P(mJ)", "uLayer", "uLayer EE gain"},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		var gains []float64
		for _, m := range e.Specs() {
			energy := func(o partition.Options) float64 {
				r, err := e.RunMechanism(m, s, o)
				if err != nil {
					panic(err)
				}
				return r.TotalJ()
			}
			l2p := energy(partition.LayerToProcessor(s, pred))
			mu := energy(partition.MuLayer(s, pred))
			row := []string{m.Name, s.Name}
			for _, p := range []partition.Proc{partition.ProcCPU, partition.ProcGPU} {
				for _, dt := range []tensor.DataType{tensor.F32, tensor.F16, tensor.QUInt8} {
					row = append(row, fmt.Sprintf("%.2f", energy(partition.SingleProcessor(s, pred, p, dt))/l2p))
				}
			}
			gains = append(gains, l2p/mu)
			row = append(row, mj(l2p), fmt.Sprintf("%.2f", mu/l2p), fmt.Sprintf("%.2fx", l2p/mu))
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: geomean uLayer energy-efficiency gain %.2fx (paper: 1.26x high-end, 1.34x mid-range; max 58.1%%/57.2%%)",
			s.Name, geomean(gains)))
	}
	return t, nil
}

// Table1 reproduces the evaluated-NN applicability matrix.
func (e *Env) Table1() (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Evaluated NNs and mechanism applicability",
		Header: []string{"NN", "Ch.Dist (3.2)", "Proc.Quant (4.2)", "Br.Dist (5)"},
	}
	for _, m := range e.Specs() {
		br := ""
		if m.HasBranches {
			br = "yes"
		}
		t.Rows = append(t.Rows, []string{m.Name, "yes", "yes", br})
	}
	return t, nil
}
