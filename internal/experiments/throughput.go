package experiments

import (
	"fmt"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// ExtensionThroughput quantifies the §2.2 / Figure 4 execution-mechanism
// taxonomy on a batch of independent inputs: network-to-processor mapping
// (Figure 4a) improves throughput but leaves single-input latency at
// single-processor levels, while μLayer (Figure 4c) improves both. The
// paper states this qualitatively; this table is the quantified
// extension.
func (e *Env) ExtensionThroughput(batch int) (*Table, error) {
	if batch <= 0 {
		batch = 8
	}
	t := &Table{
		ID:    "Extension E1",
		Title: fmt.Sprintf("Multi-input execution taxonomy (Figure 4), batch of %d", batch),
		Header: []string{
			"NN", "SoC", "policy", "throughput(inf/s)", "single-input(ms)", "mean latency(ms)", "max latency(ms)",
		},
	}
	for _, s := range e.SoCs {
		pred := e.Pred(s)
		for _, m := range []*models.Model{e.specs[0], e.specs[2]} { // GoogLeNet, VGG-16
			plans, err := buildBatchPlans(m, s, pred)
			if err != nil {
				return nil, err
			}
			for _, pol := range []exec.BatchPolicy{
				exec.BatchSingleCPU, exec.BatchSingleGPU,
				exec.BatchNetworkToProcessor, exec.BatchMuLayer,
			} {
				cfg := exec.Config{SoC: s, AsyncIssue: true, ZeroCopy: true}
				r, err := exec.RunBatch(m.Graph, pol, plans, batch, cfg)
				if err != nil {
					return nil, err
				}
				// Single-input latency: a batch of one (the §2.2 argument —
				// network-to-processor mapping cannot improve it).
				one, err := exec.RunBatch(m.Graph, pol, plans, 1, cfg)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					m.Name, s.Name, pol.String(),
					fmt.Sprintf("%.2f", r.ThroughputIPS),
					ms(one.Makespan), ms(r.MeanLatency), ms(r.MaxLatency),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"network-to-processor lifts throughput by overlapping inputs but each input is still single-processor-bound (§2.2)",
		"uLayer lifts throughput and single-input latency simultaneously (Figure 4c); at batch saturation its serial drain trades some mean completion time for that single-input win")
	return t, nil
}

// buildBatchPlans assembles the per-policy plans: single-CPU QUInt8,
// single-GPU F16 (each processor's preferred type), and the μLayer plan.
func buildBatchPlans(m *models.Model, s *soc.SoC, pred *profile.Predictor) (exec.BatchPlans, error) {
	cpuO := partition.SingleProcessor(s, pred, partition.ProcCPU, tensor.QUInt8)
	gpuO := partition.SingleProcessor(s, pred, partition.ProcGPU, tensor.F16)
	coopO := partition.MuLayer(s, pred)
	cpuP, err := partition.Build(m.Graph, cpuO)
	if err != nil {
		return exec.BatchPlans{}, err
	}
	gpuP, err := partition.Build(m.Graph, gpuO)
	if err != nil {
		return exec.BatchPlans{}, err
	}
	coopP, err := partition.Build(m.Graph, coopO)
	if err != nil {
		return exec.BatchPlans{}, err
	}
	return exec.BatchPlans{
		CPU: cpuP, GPU: gpuP, Coop: coopP,
		CPUPipe: cpuO.Pipe, GPUPipe: gpuO.Pipe, CoopPipe: coopO.Pipe,
	}, nil
}
