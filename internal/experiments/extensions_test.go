package experiments

import (
	"strings"
	"testing"
)

func TestExtensionThroughputTaxonomy(t *testing.T) {
	tab, err := env.ExtensionThroughput(8)
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in groups of four policies per (NN, SoC).
	if len(tab.Rows)%4 != 0 || len(tab.Rows) == 0 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 4 {
		cpuT := parseF(tab.Rows[i][3])
		gpuT := parseF(tab.Rows[i+1][3])
		n2pT := parseF(tab.Rows[i+2][3])
		muT := parseF(tab.Rows[i+3][3])
		best := cpuT
		if gpuT > best {
			best = gpuT
		}
		if n2pT <= best {
			t.Errorf("%s/%s: network-to-processor throughput %.2f !> best single %.2f",
				tab.Rows[i][0], tab.Rows[i][1], n2pT, best)
		}
		if muT <= best {
			t.Errorf("%s/%s: uLayer throughput %.2f !> best single %.2f",
				tab.Rows[i][0], tab.Rows[i][1], muT, best)
		}
		// μLayer's single-input latency beats every other policy's — the
		// Figure 4 taxonomy's second axis: network-to-processor mapping
		// leaves single-input latency at single-processor levels.
		cpuOne := parseF(tab.Rows[i][4])
		gpuOne := parseF(tab.Rows[i+1][4])
		n2pOne := parseF(tab.Rows[i+2][4])
		muOne := parseF(tab.Rows[i+3][4])
		bestSingle := cpuOne
		if gpuOne < bestSingle {
			bestSingle = gpuOne
		}
		if n2pOne < bestSingle*0.999 {
			t.Errorf("%s/%s: network-to-processor single-input %.2f cannot beat the best single processor %.2f",
				tab.Rows[i][0], tab.Rows[i][1], n2pOne, bestSingle)
		}
		if muOne >= bestSingle {
			t.Errorf("%s/%s: uLayer single-input %.2f !< best single %.2f",
				tab.Rows[i][0], tab.Rows[i][1], muOne, bestSingle)
		}
	}
}

func TestExtensionNPU(t *testing.T) {
	tab, err := env.ExtensionNPU()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		two := parseF(r[1])
		npu := parseF(r[2])
		three := parseF(r[3])
		if three >= two {
			t.Errorf("%s: uLayer+NPU %.2f !< uLayer %.2f", r[0], three, two)
		}
		if three >= npu {
			t.Errorf("%s: uLayer+NPU %.2f !< NPU-only %.2f", r[0], three, npu)
		}
		impr := parsePct(strings.TrimSpace(r[4]))
		if impr <= 0 {
			t.Errorf("%s: improvement %.1f%% must be positive", r[0], impr)
		}
	}
}

func TestExtensionPerChannel(t *testing.T) {
	tab, err := env.ExtensionPerChannel()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 20 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	dwImproved := 0
	for _, r := range tab.Rows {
		pt := parseF(r[2])
		pc := parseF(r[3])
		if pc > pt*1.0001 {
			t.Errorf("%s: per-channel RMS %.5f worse than per-tensor %.5f", r[0], pc, pt)
		}
		if r[1] == "dwconv" && pc < pt*0.95 {
			dwImproved++
		}
	}
	if dwImproved < 5 {
		t.Errorf("per-channel should clearly improve depthwise layers, only %d did", dwImproved)
	}
}
