package experiments

import (
	"fmt"
	"time"

	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
)

// ExtensionNPU evaluates the §8.3 extension on the hypothetical
// NPU-equipped high-end SoC: μLayer's three mechanisms generalized to a
// third processor. The paper claims "even in the presence of NPUs, the
// key ideas of our work still hold" — this table quantifies it: three-way
// cooperation beats both the accelerator alone and two-way μLayer.
func (e *Env) ExtensionNPU() (*Table, error) {
	s := soc.Exynos7420NPU()
	pred := profile.Build(s.Processors()...)
	t := &Table{
		ID:    "Extension E2",
		Title: "NPU-extended uLayer (§8.3) on " + s.Name,
		Header: []string{
			"NN", "uLayer CPU+GPU(ms)", "NPU-only(ms)", "uLayer+NPU(ms)", "impr. vs best",
		},
	}
	for _, m := range e.Specs() {
		run := func(o partition.Options) (time.Duration, error) {
			r, err := e.RunMechanism(m, s, o)
			if err != nil {
				return 0, err
			}
			return r.Latency, nil
		}
		two, err := run(partition.MuLayer(s, pred))
		if err != nil {
			return nil, err
		}
		npu, err := run(partition.NPUOnly(s, pred))
		if err != nil {
			return nil, err
		}
		three, err := run(partition.MuLayerNPU(s, pred))
		if err != nil {
			return nil, err
		}
		best := two
		if npu < best {
			best = npu
		}
		t.Rows = append(t.Rows, []string{
			m.Name, ms(two), ms(npu), ms(three),
			fmt.Sprintf("%.1f%%", (1-float64(three)/float64(best))*100),
		})
	}
	t.Notes = append(t.Notes,
		"the NPU model is a hypothetical 2018-class edge accelerator (~20 GMAC/s QUInt8, 15 pJ/MAC; DESIGN.md)",
		"channel-wise distribution, processor-friendly quantization (NPU: QUInt8), and branch distribution all generalize (§8.3)")
	return t, nil
}
