package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var env = mustEnv()

func mustEnv() *Env {
	e, err := NewEnv()
	if err != nil {
		panic(err)
	}
	return e
}

func parsePct(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		panic(s)
	}
	return v
}

func parseF(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(s, "x"), "ms"), 64)
	if err != nil {
		panic(s)
	}
	return v
}

func TestFigure5Shapes(t *testing.T) {
	tab, err := env.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 { // 13 convs + 3 fc
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	// Columns: layer, hiCPU, hiGPU, hiRatio, midCPU, midGPU, midRatio.
	var hiSum, midSum float64
	for _, r := range tab.Rows {
		hiSum += parseF(r[3])
		midSum += parseF(r[6])
	}
	hiMean := hiSum / float64(len(tab.Rows))
	midMean := midSum / float64(len(tab.Rows))
	if hiMean < 1.1 || hiMean > 1.7 {
		t.Errorf("high-end mean CPU/GPU ratio %.2f, want ≈1.4", hiMean)
	}
	if midMean > 0.95 {
		t.Errorf("mid-range CPU should beat GPU on average, ratio %.2f", midMean)
	}
}

func TestFigure6AllModels(t *testing.T) {
	tab, err := env.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 5 NNs × 2 SoCs
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		ratio := parseF(r[4])
		// Balance: neither processor dominates by more than ~2.2× anywhere.
		if ratio < 0.4 || ratio > 2.2 {
			t.Errorf("%s on %s: CPU/GPU ratio %.2f out of balance", r[0], r[1], ratio)
		}
	}
}

func TestFigure8QuantizationShapes(t *testing.T) {
	tab, err := env.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		cpuF32, cpuF16, cpuU8 := parseF(r[2]), parseF(r[3]), parseF(r[4])
		gpuF32, gpuF16, gpuU8 := parseF(r[5]), parseF(r[6]), parseF(r[7])
		if cpuF32 != 1.0 {
			t.Errorf("%s: normalization broken", r[0])
		}
		if cpuU8 >= cpuF32 {
			t.Errorf("%s/%s: CPU QUInt8 must beat F32", r[0], r[1])
		}
		if cpuF16 < 0.9*cpuF32 || cpuF16 > 1.35*cpuF32 {
			t.Errorf("%s/%s: CPU F16 (%.2f) must approximate F32 — emulated", r[0], r[1], cpuF16)
		}
		if gpuF16 >= gpuF32 {
			t.Errorf("%s/%s: GPU F16 must beat F32", r[0], r[1])
		}
		if gpuU8 < 0.98*gpuF32 {
			t.Errorf("%s/%s: GPU QUInt8 (%.2f) must not beat F32 (%.2f)", r[0], r[1], gpuU8, gpuF32)
		}
		if gpuU8 <= gpuF16 {
			t.Errorf("%s/%s: GPU QUInt8 must lose to F16", r[0], r[1])
		}
	}
}

func TestFigure12BranchPotential(t *testing.T) {
	tab, err := env.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly := parseF(tab.Rows[0][1])
	coop := parseF(tab.Rows[1][1])
	opt := parseF(tab.Rows[2][1])
	if !(opt < coop && coop < cpuOnly) {
		t.Fatalf("expected optimal < cooperative < cpu-only, got %v %v %v", opt, coop, cpuOnly)
	}
	coopImpr := parsePct(tab.Rows[1][2])
	optImpr := parsePct(tab.Rows[2][2])
	// Paper: 52.1% and 63.4%. The cost model reproduces the ordering and a
	// meaningful gap; EXPERIMENTS.md discusses the magnitude difference.
	if coopImpr < 15 || optImpr < coopImpr+3 {
		t.Fatalf("improvements coop=%.1f%% opt=%.1f%% too weak (paper: 52.1/63.4)", coopImpr, optImpr)
	}
}

func TestFigure16Headline(t *testing.T) {
	tab, err := env.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		mu := parseF(r[9])
		if mu >= 1.0 {
			t.Errorf("%s/%s: uLayer %.2f must beat layer-to-processor", r[0], r[1], mu)
		}
		impr := parsePct(r[10])
		if impr < 5 || impr > 75 {
			t.Errorf("%s/%s: improvement %.1f%% outside the plausible band", r[0], r[1], impr)
		}
	}
	// Geomean notes present for both SoCs.
	if len(tab.Notes) != 2 {
		t.Fatal("expected one geomean note per SoC")
	}
}

func TestFigure17MonotoneAblation(t *testing.T) {
	tab, err := env.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		ch, pq, mu := parseF(r[3]), parseF(r[4]), parseF(r[5])
		if mu != 1.0 {
			t.Errorf("%s/%s: normalization broken", r[0], r[1])
		}
		if pq > ch+1e-9 {
			t.Errorf("%s/%s: +Proc.Quant (%.2f) must not lose to +Ch.Dist (%.2f)", r[0], r[1], pq, ch)
		}
		if mu > pq+1e-9 {
			t.Errorf("%s/%s: +Br.Dist must not lose to +Proc.Quant", r[0], r[1])
		}
	}
}

func TestFigure18Energy(t *testing.T) {
	tab, err := env.Figure18()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		mu := parseF(r[9])
		if mu >= 1.0 {
			t.Errorf("%s/%s: uLayer energy %.2f must beat layer-to-processor", r[0], r[1], mu)
		}
	}
}

func TestTable1(t *testing.T) {
	tab, err := env.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatal("five NNs")
	}
	branchy := 0
	for _, r := range tab.Rows {
		if r[3] == "yes" {
			branchy++
		}
	}
	if branchy != 2 {
		t.Fatalf("branch distribution applies to exactly GoogLeNet and SqueezeNet, got %d rows", branchy)
	}
}

func TestFigure10AccuracyLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("numeric accuracy sweep")
	}
	cfg := DefaultAccuracyConfig()
	cfg.Samples = 12 // keep CI fast; the bench uses the full default
	tab, err := env.Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		f16 := parsePct(r[2])
		naive := parsePct(r[3])
		fq := parsePct(r[4])
		if f16 < 95 {
			t.Errorf("%s: F16 top-5 %.1f%% should be near-lossless", r[0], f16)
		}
		if fq < naive {
			t.Errorf("%s: calibrated QUInt8 (%.1f%%) must beat naive (%.1f%%)", r[0], fq, naive)
		}
	}
	// At least one deep network collapses under naive ranges.
	collapsed := false
	for _, r := range tab.Rows {
		if parsePct(r[3]) < 70 {
			collapsed = true
		}
	}
	if !collapsed {
		t.Error("naive QUInt8 should collapse on at least one deep network (Figure 10's point)")
	}
}

func TestAblations(t *testing.T) {
	a1, err := env.AblationSplitGranularity()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a1.Rows {
		coarse, paper, fine := parseF(r[1]), parseF(r[2]), parseF(r[3])
		if paper > coarse*1.001 {
			t.Errorf("%s: richer grid must not be slower than {0.5}", r[0])
		}
		// The fine grid optimizes the predictor's estimate, which can
		// diverge slightly from simulated time; it must land within a
		// small band of the paper grid (the paper's coarse grid is enough).
		if fine > paper*1.10 || fine < paper*0.80 {
			t.Errorf("%s: fine grid %.2f vs paper grid %.2f outside ±band", r[0], fine, paper)
		}
	}
	a2, err := env.AblationIssueAndMemory()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a2.Rows {
		if parseF(r[3]) < 1.0 || parseF(r[4]) < 1.0 || parseF(r[5]) < 1.0 {
			t.Errorf("%s/%s: disabling an optimization must not speed things up", r[0], r[1])
		}
	}
	a3, err := env.AblationBranchDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a3.Rows {
		if parsePct(r[4]) < 0 {
			t.Errorf("%s/%s: branch distribution must not hurt", r[0], r[1])
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== X: t ==", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in %q", want, out)
		}
	}
}
