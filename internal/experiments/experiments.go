// Package experiments regenerates every table and figure of the paper's
// motivation and evaluation sections (see DESIGN.md §4 for the index).
// Each Figure*/Table* function returns a renderable Table; the bench
// harness (bench_test.go) and cmd/mulayer-bench print them.
//
// Latency and energy figures run the executor in cost-only mode over the
// full-size spec models, driven by the calibrated device models; the
// accuracy figure (Figure 10) runs reduced numeric models through the real
// kernels (DESIGN.md §2 records both substitutions).
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/sim"
	"mulayer/internal/soc"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "Figure 16"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Env caches the SoCs, predictors, and spec models shared by the
// experiments.
type Env struct {
	SoCs  []*soc.SoC
	preds map[string]*profile.Predictor
	specs []*models.Model
}

// NewEnv profiles both SoCs and builds the five full-size spec models.
func NewEnv() (*Env, error) {
	e := &Env{SoCs: soc.All(), preds: make(map[string]*profile.Predictor)}
	for _, s := range e.SoCs {
		e.preds[s.Name] = profile.Build(s.CPU, s.GPU)
	}
	specs, err := models.Evaluated(models.Config{})
	if err != nil {
		return nil, err
	}
	e.specs = specs
	return e, nil
}

// Pred returns the predictor for a SoC.
func (e *Env) Pred(s *soc.SoC) *profile.Predictor { return e.preds[s.Name] }

// Specs returns the five evaluation networks (full-size, spec-only).
func (e *Env) Specs() []*models.Model { return e.specs }

// RunMechanism plans and cost-runs one mechanism on one model.
func (e *Env) RunMechanism(m *models.Model, s *soc.SoC, o partition.Options) (sim.Report, error) {
	plan, err := partition.Build(m.Graph, o)
	if err != nil {
		return sim.Report{}, err
	}
	res, err := exec.Run(m.Graph, plan, nil, exec.Config{
		SoC: s, Pipe: o.Pipe, AsyncIssue: true, ZeroCopy: true,
	})
	if err != nil {
		return sim.Report{}, err
	}
	return res.Report, nil
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e6) }

// ratio formats a/b.
func ratio(a, b time.Duration) string { return fmt.Sprintf("%.2f", float64(a)/float64(b)) }

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// mj formats joules as millijoules.
func mj(j float64) string { return fmt.Sprintf("%.1f", j*1e3) }

// geomean returns the geometric mean of xs.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
