package soc

import (
	"testing"

	"mulayer/internal/device"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

func TestBothSoCsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// convWork builds a representative large conv kernel for ratio checks.
func convWork(dt tensor.DataType) device.Work {
	return device.Work{Kind: nn.OpConv, MACs: 2e9, MovedBytes: 4e6, WorkingSetBytes: 4e6, Compute: dt}
}

func TestHighEndGPUOverCPURatioF32(t *testing.T) {
	// Figure 5a / §3.1: the T760MP8 achieves an average speedup of only
	// 1.40× over the A57 cluster at F32.
	s := Exynos7420()
	cpu := s.CPU.KernelTime(convWork(tensor.F32))
	gpu := s.GPU.KernelTime(convWork(tensor.F32))
	ratio := float64(cpu) / float64(gpu)
	if ratio < 1.3 || ratio > 1.5 {
		t.Fatalf("GPU/CPU F32 speedup = %.3f, want ≈1.40", ratio)
	}
}

func TestMidRangeCPUBeatsGPU(t *testing.T) {
	// §3.1: on Exynos 7880 the octa-core CPU achieves 26.1% lower latency
	// than the triple-core GPU.
	s := Exynos7880()
	cpu := s.CPU.KernelTime(convWork(tensor.F32))
	gpu := s.GPU.KernelTime(convWork(tensor.F32))
	reduction := 1 - float64(cpu)/float64(gpu)
	if reduction < 0.20 || reduction > 0.32 {
		t.Fatalf("CPU latency reduction vs GPU = %.3f, want ≈0.26", reduction)
	}
}

func TestQuantizationSpeedShapes(t *testing.T) {
	// Figure 8's qualitative shapes, on both SoCs:
	// CPU: QUInt8 ≫ F32, F16 ≈ F32. GPU: F16 ≫ F32, QUInt8 slower than F32.
	for _, s := range All() {
		cf32 := s.CPU.KernelTime(convWork(tensor.F32))
		cf16 := s.CPU.KernelTime(convWork(tensor.F16))
		cu8 := s.CPU.KernelTime(convWork(tensor.QUInt8))
		// Emulated F16 is F32 arithmetic plus conversions: no faster, at
		// most mildly slower ("no performance difference can be observed").
		if cf16 < cf32 || float64(cf16) > 1.3*float64(cf32) {
			t.Errorf("%s: CPU F16 %v should approximate F32 %v", s.Name, cf16, cf32)
		}
		speedup := float64(cf32) / float64(cu8)
		if speedup < 1.8 || speedup > 2.6 {
			t.Errorf("%s: CPU QUInt8 speedup %.2f, want ≈2.2", s.Name, speedup)
		}
		gf32 := s.GPU.KernelTime(convWork(tensor.F32))
		gf16 := s.GPU.KernelTime(convWork(tensor.F16))
		gu8 := s.GPU.KernelTime(convWork(tensor.QUInt8))
		if g := float64(gf32) / float64(gf16); g < 1.7 || g > 2.1 {
			t.Errorf("%s: GPU F16 speedup %.2f, want ≈1.9", s.Name, g)
		}
		if gu8 <= gf32 {
			t.Errorf("%s: GPU QUInt8 must be slower than F32 (32-bit accumulation)", s.Name)
		}
	}
}

func TestCooperativePotential(t *testing.T) {
	// The premise of cooperative single-layer acceleration (§3.1): with the
	// processor-friendly types, combined throughput clearly beats either
	// processor alone on both SoCs.
	for _, s := range All() {
		cu8 := s.CPU.PeakMACs(tensor.QUInt8)
		gf16 := s.GPU.PeakMACs(tensor.F16)
		best := cu8
		if gf16 > best {
			best = gf16
		}
		gain := (cu8 + gf16) / best
		if gain < 1.4 {
			t.Errorf("%s: cooperative peak gain %.2f too small for the mechanism to pay off", s.Name, gain)
		}
	}
}

func TestHighEndFasterThanMidRange(t *testing.T) {
	hi, mid := Exynos7420(), Exynos7880()
	if hi.CPU.PeakMACs(tensor.F32) <= mid.CPU.PeakMACs(tensor.F32) {
		t.Error("high-end CPU must outrun mid-range CPU")
	}
	if hi.GPU.PeakMACs(tensor.F32) <= mid.GPU.PeakMACs(tensor.F32) {
		t.Error("high-end GPU must outrun mid-range GPU")
	}
}

func TestGPULaunchDominatesCPULaunch(t *testing.T) {
	for _, s := range All() {
		if s.GPU.LaunchOverhead <= s.CPU.LaunchOverhead {
			t.Errorf("%s: OpenCL dispatch must cost more than a thread-pool wake", s.Name)
		}
		if s.SyncOverhead <= 0 || s.CopySyncOverhead <= s.SyncOverhead {
			t.Errorf("%s: zero-copy sync must be cheaper than copy-based sync", s.Name)
		}
	}
}

func TestProcessorsOrder(t *testing.T) {
	s := Exynos7420()
	ps := s.Processors()
	if len(ps) != 2 || ps[0].Type != device.CPU || ps[1].Type != device.GPU {
		t.Fatal("Processors() must return CPU then GPU")
	}
}
