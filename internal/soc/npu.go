package soc

import (
	"time"

	"mulayer/internal/device"
	"mulayer/internal/tensor"
)

// This file implements the paper's §8.3 extension: "the channel-wise
// workload distribution can be extended to distribute a layer's output
// channels to not only the CPU and the GPU, but also the NPU", with an
// NPU-friendly quantization scheme (QUInt8, like Google's TPU) and
// three-way branch distribution.
//
// No Exynos 7420/7880 shipped an NPU, so the NPU model is a hypothetical
// 2018-class edge accelerator in the spirit of the parts §8.3 cites
// (HiSilicon Kirin 970 NPU, Google Edge TPU, Intel Myriad X): a systolic
// integer engine roughly 2× the CPU's sustained QUInt8 throughput, very
// energy-efficient per MAC, nearly useless for floating point, and with a
// heavyweight driver dispatch path.

// EdgeNPU builds the hypothetical NPU processor model.
func EdgeNPU() *device.Processor {
	return &device.Processor{
		Name: "EdgeNPU(2x systolic@0.9GHz)", Type: device.NPU,
		Cores: 2, FreqGHz: 0.9,
		MACsPerCycle: map[tensor.DataType]float64{
			tensor.QUInt8: 11.1, // ~20 GMAC/s sustained: the integer engine
			tensor.F16:    0.5,  // token floating-point support
			tensor.F32:    0.25,
		},
		EffByKind:        effByKind(0.30),
		MemBWGBs:         10.0,
		CacheBytes:       1 << 20, // on-chip unified buffer
		CacheSpillFactor: 0.75,
		LaunchOverhead:   200 * time.Microsecond, // driver round-trip
		ConvertPenalty:   1.10,
		SplitChannelKnee: 16, // systolic arrays hate narrow output tiles
		PicoJPerMAC: map[tensor.DataType]float64{
			tensor.QUInt8: 15, // the headline efficiency of edge NPUs
			tensor.F16:    120,
			tensor.F32:    200,
		},
		ActivePowerW: 1.2,
	}
}

// Exynos7420NPU is the high-end SoC augmented with the hypothetical edge
// NPU — the platform for the §8.3 extension experiments.
func Exynos7420NPU() *SoC {
	s := Exynos7420()
	s.Name = "Exynos 7420 + EdgeNPU (hypothetical, §8.3)"
	s.NPU = EdgeNPU()
	return s
}
