// Package soc assembles device models into the two systems-on-chip the
// paper evaluates (§7.1): Samsung Exynos 7420 (Galaxy Note 5, "high-end")
// and Samsung Exynos 7880 (Galaxy A5, "mid-range"). It also owns the
// SoC-level energy model: DRAM energy per byte plus a static (uncore,
// rails, interconnect) power integrated over the inference makespan.
package soc

import (
	"time"

	"mulayer/internal/device"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// SoC is one modeled system-on-chip.
type SoC struct {
	Name string
	CPU  *device.Processor
	GPU  *device.Processor
	// NPU is the optional neural processing unit of the §8.3 extension;
	// nil on the paper's two evaluation SoCs.
	NPU *device.Processor

	// DRAMPicoJPerByte is the energy of moving one byte to/from DRAM.
	// Storing tensors as QUInt8 instead of F32 cuts this term 4×, one of
	// the two energy effects §7.3 credits.
	DRAMPicoJPerByte float64

	// StaticPowerW is the uncore/rail power drawn for the duration of the
	// inference. μLayer's latency reduction converts directly into static
	// energy savings.
	StaticPowerW float64

	// SyncOverhead is the per-cooperative-layer CPU↔GPU synchronization
	// cost with zero-copy shared memory (asynchronous clEnqueueMapBuffer /
	// unmap bookkeeping plus the merge barrier, §6).
	SyncOverhead time.Duration

	// SyncBWGBs is the effective rate of the cache-maintenance traffic a
	// zero-copy synchronization performs over the shared buffers (Midgard
	// map/unmap cleans and invalidates CPU cache lines): the sync cost is
	// SyncOverhead + coherentBytes/SyncBWGBs. This byte-proportional term
	// is the "high CPU-GPU synchronization overhead" §5 blames for
	// channel-wise distribution underperforming on divergent modules.
	SyncBWGBs float64

	// CopySyncOverhead is the fixed part of the copy-based alternative
	// (no zero-copy), used by the ablation benchmarks; the bytes
	// themselves are charged at memory bandwidth on top.
	CopySyncOverhead time.Duration
}

// SyncCost returns the latency of one zero-copy CPU-GPU synchronization
// over coherentBytes of shared buffers.
func (s *SoC) SyncCost(coherentBytes int64) time.Duration {
	t := float64(coherentBytes) / (s.SyncBWGBs * 1e9)
	return s.SyncOverhead + time.Duration(t*float64(time.Second))
}

// Processors returns the SoC's processors, CPU first, NPU (if any) last.
func (s *SoC) Processors() []*device.Processor {
	ps := []*device.Processor{s.CPU, s.GPU}
	if s.NPU != nil {
		ps = append(ps, s.NPU)
	}
	return ps
}

// Validate checks every processor model.
func (s *SoC) Validate() error {
	for _, p := range s.Processors() {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// effByKind is shared across processors: convolutions hit peak, GEMV-shaped
// FC layers are memory-starved, pooling and elementwise ops barely compute.
func effByKind(fc float64) map[nn.OpKind]float64 {
	return map[nn.OpKind]float64{
		nn.OpConv:      1.0,
		nn.OpDepthwise: 0.55, // low arithmetic intensity
		nn.OpFC:        fc,
		nn.OpMaxPool:   0.30,
		nn.OpAvgPool:   0.30,
		nn.OpReLU:      0.25,
		nn.OpLRN:       0.35,
		nn.OpConcat:    1.0, // pure data movement; MACs are 0
		nn.OpSoftmax:   0.25,
		nn.OpAdd:       0.25, // elementwise, bandwidth-bound
	}
}

// Exynos7420 models the high-end SoC: four Cortex-A57 cores at 2.1 GHz
// (the big cluster ACL schedules NN work onto) plus an eight-core
// Mali-T760 at 700 MHz. Calibration targets: GPU ≈ 1.40× CPU at F32
// (Figure 5a); CPU QUInt8 ≈ 2.2× its F32, CPU F16 ≈ F32 (emulated);
// GPU F16 ≈ 1.9× its F32, GPU QUInt8 ≈ 0.9× its F32 (Figure 8).
func Exynos7420() *SoC {
	cpu := &device.Processor{
		Name: "Exynos7420-CPU(4xA57@2.1GHz)", Type: device.CPU,
		Cores: 4, FreqGHz: 2.1,
		// Sustained ACL/gemmlowp-class throughput, not peak NEON: the
		// absolute scale is calibrated so GoogLeNet's first Inception
		// module takes ~13 ms CPU-only in QUInt8, matching Figure 12.
		MACsPerCycle: map[tensor.DataType]float64{
			tensor.F32:    0.55, // ~4.6 GMAC/s sustained
			tensor.F16:    0.50, // no vector F16: emulated via F32, minus conversions
			tensor.QUInt8: 1.21, // 2.2× F32: wide u8 lanes minus requantization
		},
		EffByKind:        effByKind(0.35),
		MemBWGBs:         12.0,
		CacheBytes:       2 << 20, // 2 MiB L2
		CacheSpillFactor: 0.78,
		LaunchOverhead:   8 * time.Microsecond,
		ConvertPenalty:   1.05,
		SplitChannelKnee: 4,
		PicoJPerMAC: map[tensor.DataType]float64{
			tensor.F32:    180,
			tensor.F16:    180, // emulated: same switching activity
			tensor.QUInt8: 70,
		},
		ActivePowerW: 3.5,
	}
	gpu := &device.Processor{
		Name: "Exynos7420-GPU(Mali-T760MP8@700MHz)", Type: device.GPU,
		Cores: 8, FreqGHz: 0.7,
		MACsPerCycle: map[tensor.DataType]float64{
			tensor.F32:    1.155, // calibrated: 1.40× the CPU's F32 throughput
			tensor.F16:    2.195, // 1.9× F32: native half ALUs
			tensor.QUInt8: 0.578, // 0.5× F32: 32-bit accumulation halves concurrency (§4.1)
		},
		EffByKind:        effByKind(0.30),
		MemBWGBs:         12.0,
		CacheBytes:       512 << 10,
		CacheSpillFactor: 0.80,
		LaunchOverhead:   120 * time.Microsecond, // Midgard OpenCL command issue
		ConvertPenalty:   1.05,
		SplitChannelKnee: 12, // many-core occupancy starves on narrow slices
		PicoJPerMAC: map[tensor.DataType]float64{
			tensor.F32:    120,
			tensor.F16:    60,
			tensor.QUInt8: 110,
		},
		ActivePowerW: 2.4,
	}
	return &SoC{
		Name: "Exynos 7420 (high-end)",
		CPU:  cpu, GPU: gpu,
		DRAMPicoJPerByte: 80,
		StaticPowerW:     1.6,
		SyncOverhead:     50 * time.Microsecond,
		SyncBWGBs:        0.5,
		CopySyncOverhead: 400 * time.Microsecond,
	}
}

// Exynos7880 models the mid-range SoC: eight Cortex-A53 cores at 1.9 GHz
// and a three-core Mali-T830 at 962 MHz. Calibration target: the CPU
// achieves 26.1% lower latency than the GPU at F32 (§3.1), i.e. GPU
// throughput ≈ 0.74× the CPU's.
func Exynos7880() *SoC {
	cpu := &device.Processor{
		Name: "Exynos7880-CPU(8xA53@1.9GHz)", Type: device.CPU,
		Cores: 8, FreqGHz: 1.9,
		MACsPerCycle: map[tensor.DataType]float64{
			tensor.F32:    0.25, // 64-bit NEON datapath, in-order pipeline
			tensor.F16:    0.22,
			tensor.QUInt8: 0.55,
		},
		EffByKind:        effByKind(0.35),
		MemBWGBs:         6.5,
		CacheBytes:       1 << 20,
		CacheSpillFactor: 0.78,
		LaunchOverhead:   10 * time.Microsecond,
		ConvertPenalty:   1.05,
		SplitChannelKnee: 4,
		PicoJPerMAC: map[tensor.DataType]float64{
			tensor.F32:    150,
			tensor.F16:    150,
			tensor.QUInt8: 60,
		},
		ActivePowerW: 1.8,
	}
	gpu := &device.Processor{
		Name: "Exynos7880-GPU(Mali-T830MP3@962MHz)", Type: device.GPU,
		Cores: 3, FreqGHz: 0.962,
		MACsPerCycle: map[tensor.DataType]float64{
			tensor.F32:    0.973, // calibrated: 0.739× the CPU's F32 throughput
			tensor.F16:    1.849,
			tensor.QUInt8: 0.487,
		},
		EffByKind:        effByKind(0.30),
		MemBWGBs:         6.5,
		CacheBytes:       256 << 10,
		CacheSpillFactor: 0.80,
		LaunchOverhead:   150 * time.Microsecond,
		ConvertPenalty:   1.05,
		SplitChannelKnee: 7, // three cores fill up sooner than the MP8
		PicoJPerMAC: map[tensor.DataType]float64{
			tensor.F32:    130,
			tensor.F16:    65,
			tensor.QUInt8: 120,
		},
		ActivePowerW: 1.4,
	}
	return &SoC{
		Name: "Exynos 7880 (mid-range)",
		CPU:  cpu, GPU: gpu,
		DRAMPicoJPerByte: 100,
		StaticPowerW:     1.1,
		SyncOverhead:     60 * time.Microsecond,
		SyncBWGBs:        0.7,
		CopySyncOverhead: 500 * time.Microsecond,
	}
}

// All returns both evaluated SoCs, high-end first (paper order).
func All() []*SoC {
	return []*SoC{Exynos7420(), Exynos7880()}
}
