// Package tensor provides the dense NCHW tensor types μLayer computes on:
// 32-bit floats (the NN default), IEEE binary16 halves (the GPU-friendly
// type), and 8-bit linearly quantized integers (the CPU-friendly type and
// the at-rest storage format under processor-friendly quantization).
//
// The NCHW layout keeps each channel's H×W plane contiguous, which makes
// μLayer's channel-wise workload distribution a pair of contiguous range
// operations: a [c0,c1) slice of the output channels of one batch element
// is one contiguous span.
package tensor

import (
	"fmt"
	"math"

	"mulayer/internal/f16"
	"mulayer/internal/quant"
)

// DataType identifies the element type of a tensor and of an arithmetic
// pipeline. μLayer's processor-friendly quantization stores data as QUInt8
// and computes in QUInt8 on the CPU and in F16 on the GPU.
type DataType int

// The data types of the paper (§4.1).
const (
	F32    DataType = iota // 32-bit single-precision float (NN default)
	F16                    // 16-bit half-precision float (GPU native)
	QUInt8                 // 8-bit linearly quantized unsigned integer (CPU native)
)

// String implements fmt.Stringer.
func (d DataType) String() string {
	switch d {
	case F32:
		return "F32"
	case F16:
		return "F16"
	case QUInt8:
		return "QUInt8"
	}
	return fmt.Sprintf("DataType(%d)", int(d))
}

// Size returns the element size in bytes.
func (d DataType) Size() int64 {
	switch d {
	case F32:
		return 4
	case F16:
		return 2
	case QUInt8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown data type %d", int(d)))
}

// AllDataTypes lists every supported data type, in paper order.
var AllDataTypes = []DataType{F32, F16, QUInt8}

// Shape is a 4-D NCHW shape. Filters use the same struct with the
// convention N=output channels, C=input channels (OIHW).
type Shape struct {
	N, C, H, W int
}

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

// String implements fmt.Stringer.
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Index returns the flat NCHW offset of element (n,c,h,w).
func (s Shape) Index(n, c, h, w int) int {
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// ChannelSpan returns the [lo,hi) flat range covering channels [c0,c1) of
// batch element n. The span is contiguous because of the NCHW layout.
func (s Shape) ChannelSpan(n, c0, c1 int) (lo, hi int) {
	plane := s.H * s.W
	base := n * s.C * plane
	return base + c0*plane, base + c1*plane
}

// Tensor is a dense float32 NCHW tensor.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zeroed float32 tensor.
func New(s Shape) *Tensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s, Data: make([]float32, s.Elems())}
}

// NewFrom wraps existing data (no copy). len(data) must equal s.Elems().
func NewFrom(s Shape, data []float32) *Tensor {
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d != shape %v elems %d", len(data), s, s.Elems()))
	}
	return &Tensor{Shape: s, Data: data}
}

// At returns element (n,c,h,w).
func (t *Tensor) At(n, c, h, w int) float32 { return t.Data[t.Shape.Index(n, c, h, w)] }

// Set stores element (n,c,h,w).
func (t *Tensor) Set(n, c, h, w int, v float32) { t.Data[t.Shape.Index(n, c, h, w)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape)
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Range returns the min and max element. It panics on an empty tensor.
func (t *Tensor) Range() (min, max float32) {
	min, max = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two tensors of identical shape.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if t.Shape != o.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	var m float64
	for i, v := range t.Data {
		if d := math.Abs(float64(v - o.Data[i])); d > m {
			m = d
		}
	}
	return m
}

// CopyChannels copies channels [c0,c1) of every batch element from src into
// the same channel positions of t. Shapes must agree except that both
// tensors simply need c1 ≤ C. This is the merge step of the channel-wise
// workload distribution.
func (t *Tensor) CopyChannels(src *Tensor, c0, c1 int) {
	if t.Shape != src.Shape {
		panic("tensor: CopyChannels shape mismatch")
	}
	for n := 0; n < t.Shape.N; n++ {
		lo, hi := t.Shape.ChannelSpan(n, c0, c1)
		copy(t.Data[lo:hi], src.Data[lo:hi])
	}
}

// HTensor is a dense binary16 NCHW tensor.
type HTensor struct {
	Shape Shape
	Data  []f16.F16
}

// NewH allocates a zeroed half-precision tensor.
func NewH(s Shape) *HTensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &HTensor{Shape: s, Data: make([]f16.F16, s.Elems())}
}

// At returns element (n,c,h,w).
func (t *HTensor) At(n, c, h, w int) f16.F16 { return t.Data[t.Shape.Index(n, c, h, w)] }

// Set stores element (n,c,h,w).
func (t *HTensor) Set(n, c, h, w int, v f16.F16) { t.Data[t.Shape.Index(n, c, h, w)] = v }

// QTensor is a dense 8-bit linearly quantized NCHW tensor with per-tensor
// quantization parameters.
type QTensor struct {
	Shape  Shape
	Data   []uint8
	Params quant.Params
}

// NewQ allocates a zeroed quantized tensor with the given parameters.
func NewQ(s Shape, p quant.Params) *QTensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &QTensor{Shape: s, Data: make([]uint8, s.Elems()), Params: p}
}

// At returns element (n,c,h,w).
func (t *QTensor) At(n, c, h, w int) uint8 { return t.Data[t.Shape.Index(n, c, h, w)] }

// Set stores element (n,c,h,w).
func (t *QTensor) Set(n, c, h, w int, v uint8) { t.Data[t.Shape.Index(n, c, h, w)] = v }

// Clone returns a deep copy.
func (t *QTensor) Clone() *QTensor {
	c := NewQ(t.Shape, t.Params)
	copy(c.Data, t.Data)
	return c
}

// FillZeroPoint sets every element to the zero point (real value 0),
// the quantized analogue of zero initialization.
func (t *QTensor) FillZeroPoint() {
	for i := range t.Data {
		t.Data[i] = t.Params.ZeroPoint
	}
}

// CopyChannels copies channels [c0,c1) of every batch element from src.
// Both tensors must share shape and quantization parameters, which is what
// makes the channel-wise merge a pure byte copy.
func (t *QTensor) CopyChannels(src *QTensor, c0, c1 int) {
	if t.Shape != src.Shape {
		panic("tensor: CopyChannels shape mismatch")
	}
	if t.Params != src.Params {
		panic("tensor: CopyChannels quantization params mismatch")
	}
	for n := 0; n < t.Shape.N; n++ {
		lo, hi := t.Shape.ChannelSpan(n, c0, c1)
		copy(t.Data[lo:hi], src.Data[lo:hi])
	}
}

// Quantize converts a float32 tensor to QUInt8 under the given parameters.
func Quantize(t *Tensor, p quant.Params) *QTensor {
	q := NewQ(t.Shape, p)
	for i, v := range t.Data {
		q.Data[i] = p.Quantize(v)
	}
	return q
}

// QuantizeAuto chooses parameters from the tensor's own range (per-tensor
// min/max) and quantizes. This is the "naive" post-training scheme whose
// accuracy Figure 10 shows collapsing on deep NNs.
func QuantizeAuto(t *Tensor) *QTensor {
	min, max := t.Range()
	return Quantize(t, quant.ChooseParams(min, max))
}

// Dequantize converts a quantized tensor back to float32 representatives.
func Dequantize(q *QTensor) *Tensor {
	t := New(q.Shape)
	for i, v := range q.Data {
		t.Data[i] = q.Params.Dequantize(v)
	}
	return t
}

// DequantizeToHalf converts a quantized tensor to binary16, rounding each
// representative to half precision. This is the GPU's on-the-fly load
// conversion under processor-friendly quantization (Figure 9b).
func DequantizeToHalf(q *QTensor) *HTensor {
	h := NewH(q.Shape)
	for i, v := range q.Data {
		h.Data[i] = f16.FromFloat32(q.Params.Dequantize(v))
	}
	return h
}

// ToHalf rounds a float32 tensor to binary16.
func ToHalf(t *Tensor) *HTensor {
	h := NewH(t.Shape)
	for i, v := range t.Data {
		h.Data[i] = f16.FromFloat32(v)
	}
	return h
}

// HalfToFloat converts a binary16 tensor to float32 exactly.
func HalfToFloat(h *HTensor) *Tensor {
	t := New(h.Shape)
	for i, v := range h.Data {
		t.Data[i] = v.Float32()
	}
	return t
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-amp, amp] derived from seed via SplitMix64. The same (seed, shape)
// always produces the same contents, which keeps the synthetic model zoo
// reproducible without shipping weight files.
func (t *Tensor) FillRandom(seed uint64, amp float32) {
	s := seed
	for i := range t.Data {
		s = splitmix64(s)
		// 53 high bits → uniform in [0,1).
		u := float64(s>>11) / (1 << 53)
		t.Data[i] = (float32(u)*2 - 1) * amp
	}
}

// splitmix64 is the SplitMix64 PRNG step: a tiny, high-quality, stateless
// mixer suitable for reproducible weight synthesis.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
