package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"mulayer/internal/quant"
)

func TestShapeIndexLayout(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	if s.Elems() != 120 {
		t.Fatalf("elems = %d", s.Elems())
	}
	// NCHW: w is fastest, then h, then c, then n.
	if s.Index(0, 0, 0, 1)-s.Index(0, 0, 0, 0) != 1 {
		t.Error("w stride")
	}
	if s.Index(0, 0, 1, 0)-s.Index(0, 0, 0, 0) != 5 {
		t.Error("h stride")
	}
	if s.Index(0, 1, 0, 0)-s.Index(0, 0, 0, 0) != 20 {
		t.Error("c stride")
	}
	if s.Index(1, 0, 0, 0)-s.Index(0, 0, 0, 0) != 60 {
		t.Error("n stride")
	}
	if s.Index(1, 2, 3, 4) != 119 {
		t.Error("last element")
	}
}

func TestChannelSpanContiguous(t *testing.T) {
	s := Shape{N: 2, C: 8, H: 3, W: 3}
	lo, hi := s.ChannelSpan(1, 2, 5)
	if lo != s.Index(1, 2, 0, 0) {
		t.Errorf("lo = %d", lo)
	}
	if hi != s.Index(1, 5, 0, 0) {
		t.Errorf("hi = %d", hi)
	}
	if hi-lo != 3*3*3 {
		t.Errorf("span length = %d", hi-lo)
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1, 1}).Valid() {
		t.Error("1x1x1x1 should be valid")
	}
	for _, s := range []Shape{{0, 1, 1, 1}, {1, -1, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}} {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid shape must panic")
		}
	}()
	New(Shape{0, 1, 1, 1})
}

func TestNewFromLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFrom with wrong length must panic")
		}
	}()
	NewFrom(Shape{1, 1, 2, 2}, []float32{1, 2, 3})
}

func TestAtSetCloneFill(t *testing.T) {
	a := New(Shape{1, 2, 2, 2})
	a.Set(0, 1, 1, 0, 42)
	if a.At(0, 1, 1, 0) != 42 {
		t.Fatal("At/Set")
	}
	b := a.Clone()
	b.Set(0, 1, 1, 0, 7)
	if a.At(0, 1, 1, 0) != 42 {
		t.Fatal("Clone must deep-copy")
	}
	a.Fill(3)
	for _, v := range a.Data {
		if v != 3 {
			t.Fatal("Fill")
		}
	}
}

func TestRangeAndMaxAbsDiff(t *testing.T) {
	a := NewFrom(Shape{1, 1, 1, 4}, []float32{-3, 0, 2, 1})
	min, max := a.Range()
	if min != -3 || max != 2 {
		t.Fatalf("range [%v,%v]", min, max)
	}
	b := NewFrom(Shape{1, 1, 1, 4}, []float32{-3, 0.5, 2, 1})
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Fatalf("diff = %v", d)
	}
}

func TestMaxAbsDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	New(Shape{1, 1, 1, 4}).MaxAbsDiff(New(Shape{1, 1, 2, 2}))
}

func TestCopyChannelsMerge(t *testing.T) {
	s := Shape{N: 2, C: 4, H: 2, W: 2}
	cpuOut := New(s)
	gpuOut := New(s)
	cpuOut.Fill(1)
	gpuOut.Fill(2)
	merged := New(s)
	merged.CopyChannels(cpuOut, 0, 3) // CPU computed channels [0,3)
	merged.CopyChannels(gpuOut, 3, 4) // GPU computed channel 3
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			want := float32(1)
			if c >= 3 {
				want = 2
			}
			if merged.At(n, c, 0, 0) != want {
				t.Fatalf("n=%d c=%d got %v want %v", n, c, merged.At(n, c, 0, 0), want)
			}
		}
	}
}

func TestQTensorCopyChannelsChecksParams(t *testing.T) {
	s := Shape{1, 2, 1, 1}
	a := NewQ(s, quant.ChooseParams(-1, 1))
	b := NewQ(s, quant.ChooseParams(-2, 2))
	defer func() {
		if recover() == nil {
			t.Error("params mismatch must panic")
		}
	}()
	a.CopyChannels(b, 0, 1)
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	a := New(Shape{1, 2, 3, 3})
	a.FillRandom(1, 2.0)
	q := QuantizeAuto(a)
	back := Dequantize(q)
	if d := a.MaxAbsDiff(back); d > float64(q.Params.Scale)*0.5001 {
		t.Fatalf("round-trip error %v exceeds half step %v", d, q.Params.Scale/2)
	}
}

func TestFillZeroPoint(t *testing.T) {
	q := NewQ(Shape{1, 1, 2, 2}, quant.ChooseParams(-1, 1))
	q.FillZeroPoint()
	for _, v := range q.Data {
		if q.Params.Dequantize(v) != 0 {
			t.Fatal("zero point must dequantize to 0")
		}
	}
}

func TestDequantizeToHalfMatchesTwoStep(t *testing.T) {
	a := New(Shape{1, 1, 4, 4})
	a.FillRandom(2, 3.0)
	q := QuantizeAuto(a)
	h := DequantizeToHalf(q)
	f := Dequantize(q)
	hf := HalfToFloat(h)
	// Half of a dequantized value equals rounding the float representative.
	want := ToHalf(f)
	for i := range h.Data {
		if h.Data[i] != want.Data[i] {
			t.Fatalf("elem %d: %v vs %v", i, h.Data[i].Float32(), want.Data[i].Float32())
		}
	}
	// And the numeric error vs the f32 representative is at most an f16 ulp.
	for i := range hf.Data {
		d := math.Abs(float64(hf.Data[i] - f.Data[i]))
		if d > math.Abs(float64(f.Data[i]))*0.001+1e-6 {
			t.Fatalf("half conversion error %v at %d", d, i)
		}
	}
}

func TestToHalfRoundTripExactForSmallInts(t *testing.T) {
	a := NewFrom(Shape{1, 1, 1, 5}, []float32{0, 1, -2, 128, -1024})
	back := HalfToFloat(ToHalf(a))
	if a.MaxAbsDiff(back) != 0 {
		t.Fatal("small integers must convert exactly")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(Shape{1, 2, 4, 4})
	b := New(Shape{1, 2, 4, 4})
	a.FillRandom(99, 1)
	b.FillRandom(99, 1)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("same seed must give identical tensors")
	}
	c := New(Shape{1, 2, 4, 4})
	c.FillRandom(100, 1)
	if a.MaxAbsDiff(c) == 0 {
		t.Fatal("different seeds should differ")
	}
	min, max := a.Range()
	if min < -1 || max > 1 {
		t.Fatalf("amp bound violated: [%v,%v]", min, max)
	}
}

func TestDataTypeSizeAndString(t *testing.T) {
	if F32.Size() != 4 || F16.Size() != 2 || QUInt8.Size() != 1 {
		t.Error("sizes")
	}
	if F32.String() != "F32" || F16.String() != "F16" || QUInt8.String() != "QUInt8" {
		t.Error("strings")
	}
	if len(AllDataTypes) != 3 {
		t.Error("AllDataTypes")
	}
}

func TestHTensorAtSet(t *testing.T) {
	h := NewH(Shape{1, 1, 2, 2})
	h.Set(0, 0, 1, 1, 0x3c00)
	if h.At(0, 0, 1, 1) != 0x3c00 {
		t.Fatal("HTensor At/Set")
	}
}

func TestQTensorClone(t *testing.T) {
	q := NewQ(Shape{1, 1, 2, 2}, quant.ChooseParams(-1, 1))
	q.Set(0, 0, 0, 0, 200)
	c := q.Clone()
	c.Set(0, 0, 0, 0, 100)
	if q.At(0, 0, 0, 0) != 200 {
		t.Fatal("Clone must deep-copy")
	}
	if c.Params != q.Params {
		t.Fatal("Clone must keep params")
	}
}

func TestPropertyChannelSpansPartition(t *testing.T) {
	// Splitting [0,C) at any boundary yields two spans that exactly tile
	// the batch element's data — the no-redundancy invariant of the
	// channel-wise distribution at the layout level.
	f := func(c, split, n uint8) bool {
		C := int(c%16) + 1
		S := int(split) % (C + 1)
		N := int(n%3) + 1
		s := Shape{N: N, C: C, H: 3, W: 2}
		for b := 0; b < N; b++ {
			lo1, hi1 := s.ChannelSpan(b, 0, S)
			lo2, hi2 := s.ChannelSpan(b, S, C)
			if hi1 != lo2 {
				return false
			}
			if lo1 != s.Index(b, 0, 0, 0) {
				return false
			}
			if hi2 != lo1+C*6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
